package core_test

import (
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/storage"
	"abyss1000/internal/wal"
)

// orderedFixture is the counter fixture plus an empty ordered secondary
// index over the counter table.
func orderedFixture(rows int) (*sim.Engine, *core.DB, *storage.Table, *index.Ordered) {
	eng := sim.New(2, 1)
	db, tab := cctest.NewCounterDB(eng, rows)
	ord := db.AddOrderedIndex("C_ORD", tab)
	return eng, db, tab, ord
}

// TestOrderedInsertDeferredUntilCommit: an InsertRowOrdered entry obeys
// the deferred-insert protocol — invisible to scans inside the inserting
// transaction, published to both indexes at commit, dropped on abort.
func TestOrderedInsertDeferredUntilCommit(t *testing.T) {
	eng, db, tab, ord := orderedFixture(64)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(db)
	idx := db.Index("C_PK")
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		w := core.NewWorker(p, db, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			row := tx.InsertRowOrdered(idx, 1000, ord, 500)
			tab.Schema.PutU64(row, 0, 1000)
			tab.Schema.PutU64(row, 1, 77)
			if got := tx.RangeScan(ord, 0, 1<<62); len(got) != 0 {
				t.Errorf("staged ordered entry visible before commit: %v", got)
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("insert txn: %v", err)
		}
		// A second insert aborts: neither index may retain it.
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			row := tx.InsertRowOrdered(idx, 1001, ord, 501)
			tab.Schema.PutU64(row, 0, 1001)
			return core.ErrUserAbort
		}})
		err = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			got := tx.RangeScan(ord, 0, 1<<62)
			if len(got) != 1 || got[0].Key != 500 {
				t.Errorf("scan after commit = %v, want one entry with key 500", got)
				return nil
			}
			if slot, ok := tx.OrderedLookup(ord, 500); !ok || slot != int(got[0].Slot) {
				t.Errorf("OrderedLookup(500) = %d, %v", slot, ok)
			}
			row, err := tx.Read(tab, int(got[0].Slot))
			if err != nil {
				return err
			}
			if tab.Schema.GetU64(row, 1) != 77 {
				t.Error("ordered scan led to wrong row image")
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("scan txn: %v", err)
		}
	})
}

// TestOrderedInsertRecovery round-trips ordered-index inserts through the
// WAL: commit records carry the ordered ordinal and key, replay rebuilds
// the entries, replaying twice changes nothing, and a checkpoint carries
// the entries forward on its own.
func TestOrderedInsertRecovery(t *testing.T) {
	eng, db, tab, ord := orderedFixture(64)
	sink := wal.NewMemSink()
	db.Wal = wal.NewWriter(sink, wal.Config{})
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(db)
	idx := db.Index("C_PK")
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		w := core.NewWorker(p, db, scheme)
		for i := 0; i < 8; i++ {
			key := uint64(2000 + i)
			okey := uint64(900 - i) // descending: replay must re-sort
			err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				row := tx.InsertRowOrdered(idx, key, ord, okey)
				tab.Schema.PutU64(row, 0, key)
				tab.Schema.PutU64(row, 1, okey)
				return nil
			}})
			if err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	})
	if err := db.Wal.Flush(); err != nil {
		t.Fatal(err)
	}
	live := core.DumpState(db, scheme)

	recover := func(stream []byte) (*core.DB, *index.Ordered, core.RecoverInfo) {
		_, db2, _, ord2 := orderedFixture(64)
		info, err := core.Recover(db2, stream)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		return db2, ord2, info
	}

	db2, ord2, info := recover(sink.Bytes())
	if info.Inserts != 8 {
		t.Fatalf("replayed %d inserts, want 8", info.Inserts)
	}
	if ord2.Len() != 8 {
		t.Fatalf("recovered ordered index has %d entries, want 8", ord2.Len())
	}
	if got := core.DumpState(db2, nil); got != live {
		t.Fatalf("recovered state diverges from live state:\nlive:\n%s\nrecovered:\n%s", live, got)
	}
	// Idempotence: a second replay over the recovered state is a no-op.
	if _, err := core.Recover(db2, sink.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := core.DumpState(db2, nil); got != live {
		t.Fatal("second replay changed the recovered state")
	}

	// Checkpoint the live DB: recovery now starts from the snapshot, whose
	// ordered-index records alone must rebuild the entries.
	if err := core.Checkpoint(db, scheme); err != nil {
		t.Fatal(err)
	}
	db3, ord3, info := recover(sink.Bytes())
	if info.Checkpoint == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
	if info.Commits != 0 {
		t.Fatalf("post-checkpoint replay should be empty, applied %d commits", info.Commits)
	}
	if ord3.Len() != 8 {
		t.Fatalf("checkpoint-only recovery has %d ordered entries, want 8", ord3.Len())
	}
	if got := core.DumpState(db3, nil); got != live {
		t.Fatal("checkpoint-only recovery diverges from live state")
	}
}
