package core

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/index"
	"abyss1000/internal/mem"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/wal"
)

// Scheme is the pluggable concurrency-control interface (§3.2: "a pluggable
// lock manager that allows us to swap in the different implementations of
// the concurrency control schemes"). One Scheme instance serves a whole DB;
// per-transaction state lives in the object returned by NewTxnState, which
// is allocated once per worker and reused.
type Scheme interface {
	// Name returns the paper's name for the scheme (e.g. "DL_DETECT").
	Name() string

	// Setup attaches per-tuple metadata to every table in db. Called
	// once, after the workload has populated the database.
	Setup(db *DB)

	// NewTxnState allocates the reusable per-worker transaction state.
	NewTxnState(w *Worker) interface{}

	// Begin starts a transaction: reset per-txn state, allocate a
	// timestamp if the scheme needs one.
	Begin(tx *TxnCtx)

	// Read returns a readable image of (t, slot): the live row for
	// locking schemes, a private copy for T/O and OCC, a version for
	// MVCC. It may return ErrAbort.
	Read(tx *TxnCtx, t *storage.Table, slot int) ([]byte, error)

	// WriteRow declares a write of (t, slot) and returns the target
	// buffer for the caller to mutate in place (the live row under 2PL
	// after undo capture; a workspace or version buffer under T/O
	// schemes). The buffer holds the row's current image, so
	// read-modify-write needs no separate lock upgrade and no closure —
	// the access path stays allocation-free. The buffer is valid until
	// Commit/Abort; callers must not retain it past transaction end.
	WriteRow(tx *TxnCtx, t *storage.Table, slot int) ([]byte, error)

	// Commit finalizes the transaction (validation, applying buffered
	// writes, releasing locks). On error the engine calls Abort.
	Commit(tx *TxnCtx) error

	// Abort rolls back (undo in-place writes, discard buffers, release
	// locks, remove pending versions). Must be callable after any
	// partial execution, including after a failed Commit.
	Abort(tx *TxnCtx)

	// InitTuple initializes CC metadata for a freshly inserted tuple
	// (applied at commit by the engine's deferred-insert protocol).
	InitTuple(tx *TxnCtx, t *storage.Table, slot int)
}

// insertRec is a staged insert: the row image is buffered privately and
// applied at commit, so uncommitted inserts are never visible and aborts
// simply drop the staging (the engine's deferred-insert protocol).
type insertRec struct {
	idx  *index.Hash
	key  uint64
	buf  []byte
	part int

	// oidx, when non-nil, is an ordered secondary index the row is also
	// published into (under okey) at commit.
	oidx *index.Ordered
	okey uint64
}

// walWrite is one captured write target for the commit record: buf is the
// scheme's write buffer for (t, slot), which holds the final after-image
// by the time the scheme reaches its commit point (in-place row under 2PL
// and H-STORE, private workspace under T/O and OCC, pending version under
// MVCC) — so LogCommit reads images without knowing the scheme.
type walWrite struct {
	t    *storage.Table
	slot int
	buf  []byte
}

// TSOrderedScheme marks schemes whose same-slot final value is decided by
// transaction timestamp rather than by the order commits reach their
// commit point (TIMESTAMP, MVCC). Their commit records carry the
// transaction timestamp as the replay version so recovery keeps the
// highest-timestamp image regardless of log order. WAIT_DIE is NOT one of
// these: it uses timestamps only to pick abort victims; lock order still
// decides values.
type TSOrderedScheme interface {
	TSOrderedCommits()
}

// TxnCtx is the per-worker transaction context handed to Txn.Run. It is
// reused across transactions to avoid allocation churn.
type TxnCtx struct {
	P  rt.Proc
	W  *Worker
	DB *DB

	// TS is the transaction's timestamp, when the scheme allocates one.
	TS uint64

	// Txn is the transaction being executed (set by the engine before
	// Begin; H-STORE reads Partitions from it).
	Txn Txn

	// State is the scheme's per-transaction state (from NewTxnState).
	State interface{}

	// Alloc provides transaction-lifetime buffers, bulk-freed at
	// transaction end.
	Alloc mem.Allocator

	inserts []insertRec
	tuples  uint64

	// walWrites collects write targets while the WAL or history capture
	// is attached; logged flips when the commit record has been appended
	// (schemes call LogCommit at their commit point; the worker's
	// post-Commit call is a no-op fallback for schemes without a hook).
	walWrites []walWrite
	logged    bool

	// capReads/capWrites accumulate the transaction's history-capture
	// record while DB.Cap is attached (see capture.go).
	capReads  []capAccess
	capWrites []capWrite

	// scanBuf backs RangeScan results for the transaction's lifetime: each
	// scan appends its entries and returns its own window, so nested scans
	// (index-nested-loop joins) never clobber each other. Reset per txn,
	// steady-state allocation-free once grown.
	scanBuf []index.Entry
}

func (tx *TxnCtx) reset() {
	tx.inserts = tx.inserts[:0]
	tx.tuples = 0
	tx.TS = 0
	tx.walWrites = tx.walWrites[:0]
	tx.logged = false
	tx.capReads = tx.capReads[:0]
	tx.capWrites = tx.capWrites[:0]
	tx.scanBuf = tx.scanBuf[:0]
	tx.Alloc.Reset()
}

// Lookup probes idx for key. Index time (probe + bucket latch) is billed
// to the INDEX component.
func (tx *TxnCtx) Lookup(idx *index.Hash, key uint64) (int, bool) {
	return idx.Lookup(tx.P, key)
}

// OrderedLookup probes the ordered index for the first entry with key.
func (tx *TxnCtx) OrderedLookup(o *index.Ordered, key uint64) (int, bool) {
	return o.Lookup(tx.P, key)
}

// RangeScan collects every ordered-index entry with lo <= key <= hi, in
// ascending key order, billing the INDEX component for the traversal. The
// returned slice is valid for the rest of the transaction (nested scans
// get separate windows). The scan yields key→slot pairs only; reading the
// rows afterwards through Read pays the concurrency-control protocol per
// tuple and is what the serializability capture sees. The pair set itself
// is latch-consistent, not serializable: an insert committed after the
// scan's latch window is invisible, so range predicates can observe
// phantoms under every scheme (see workloads/chaos).
func (tx *TxnCtx) RangeScan(o *index.Ordered, lo, hi uint64) []index.Entry {
	return tx.rangeScan(o, lo, hi, -1)
}

// RangeScanLimit is RangeScan capped at max entries (the lowest-keyed
// matches); max < 0 means unlimited.
func (tx *TxnCtx) RangeScanLimit(o *index.Ordered, lo, hi uint64, max int) []index.Entry {
	return tx.rangeScan(o, lo, hi, max)
}

func (tx *TxnCtx) rangeScan(o *index.Ordered, lo, hi uint64, max int) []index.Entry {
	start := len(tx.scanBuf)
	tx.scanBuf = o.RangeScanLimit(tx.P, lo, hi, max, tx.scanBuf)
	end := len(tx.scanBuf)
	return tx.scanBuf[start:end:end]
}

// Read returns a readable row image for (t, slot) via the scheme.
func (tx *TxnCtx) Read(t *storage.Table, slot int) ([]byte, error) {
	tx.tuples++
	row, err := tx.W.Scheme.Read(tx, t, slot)
	if err != nil {
		return nil, err
	}
	tx.P.Tick(stats.Useful, costs.UsefulPerRow)
	return row, nil
}

// UpdateRow declares a write on (t, slot) and returns the scheme's target
// buffer, which holds the row's current image; the caller mutates it in
// place (read-modify-write needs no second call). The buffer is valid
// until Commit/Abort.
func (tx *TxnCtx) UpdateRow(t *storage.Table, slot int) ([]byte, error) {
	tx.tuples++
	row, err := tx.W.Scheme.WriteRow(tx, t, slot)
	if err != nil {
		return nil, err
	}
	if tx.DB.Wal != nil || tx.DB.Cap != nil {
		tx.captureWrite(t, slot, row)
	}
	tx.P.Tick(stats.Useful, costs.UsefulPerRow)
	return row, nil
}

// captureWrite stages (t, slot, buf) for the commit record, deduplicating
// repeat declarations of the same slot (schemes hand back the same buffer,
// so one capture carries the final image).
func (tx *TxnCtx) captureWrite(t *storage.Table, slot int, buf []byte) {
	for i := range tx.walWrites {
		w := &tx.walWrites[i]
		if w.t == t && w.slot == slot {
			w.buf = buf
			return
		}
	}
	tx.walWrites = append(tx.walWrites, walWrite{t: t, slot: slot, buf: buf})
}

// LogCommit appends the transaction's commit record to the attached WAL.
// Schemes call it at their commit point — the instant their locks,
// latches or validation outcome fix the transaction's place in the
// serialization order — so the log sees commits in an order consistent
// with their effects. It is idempotent per transaction; the engine's
// post-Commit fallback covers schemes without an explicit hook. Read-only
// transactions append nothing.
//
// Log time is billed to the LOG component via Breakdown.Add, which never
// advances the simulated clock: with accounting-only logging the
// simulator's schedule — and therefore the golden signature — is
// byte-identical to a run without durability.
func (tx *TxnCtx) LogCommit() {
	lw := tx.DB.Wal
	if (lw == nil && tx.DB.Cap == nil) || tx.logged {
		return
	}
	tx.logged = true
	if c := tx.DB.Cap; c != nil {
		// The history capture shares the commit point: write versions are
		// assigned here, while the scheme's locks or latches still pin
		// every written slot (see capture.go).
		c.commitPoint(tx)
	}
	if lw == nil {
		return
	}
	if len(tx.walWrites) == 0 && len(tx.inserts) == 0 {
		return
	}
	w := tx.W
	c := &w.walCommit
	c.Worker = tx.P.ID()
	c.Ver = 0
	if w.tsOrdered {
		c.Ver = tx.TS
	}
	c.Updates = c.Updates[:0]
	for i := range tx.walWrites {
		wr := &tx.walWrites[i]
		c.Updates = append(c.Updates, wal.Update{Table: wr.t.ID, Slot: wr.slot, Image: wr.buf})
	}
	c.Inserts = c.Inserts[:0]
	for i := range tx.inserts {
		in := &tx.inserts[i]
		rec := wal.Insert{
			Table: in.idx.Table().ID,
			Index: tx.DB.indexOrd[in.idx],
			Key:   in.key,
			Image: in.buf,
		}
		if in.oidx != nil {
			rec.OIndex = tx.DB.ordOrd[in.oidx] + 1
			rec.OKey = in.okey
		}
		c.Inserts = append(c.Inserts, rec)
	}
	w.walBuf = wal.AppendCommit(w.walBuf[:0], c)
	lsn, sealed := lw.Append(w.walBuf)
	w.walLSN = lsn
	cycles := uint64(costs.LogAppend) + costs.CopyCost(uint64(len(w.walBuf)))
	if sealed {
		cycles += costs.LogFsync
	}
	tx.P.Stats().Add(stats.Log, cycles)
}

// InsertRow stages a new row for idx's table under key and returns the
// private staging buffer for the caller to populate (contents are
// unspecified until written). The row becomes visible atomically at
// commit (deferred-insert protocol).
func (tx *TxnCtx) InsertRow(idx *index.Hash, key uint64) []byte {
	tx.tuples++
	t := idx.Table()
	buf := tx.Alloc.Alloc(tx.P, stats.Useful, t.Schema.RowSize())
	// The arena recycles memory across transactions; a fresh row must not
	// inherit a predecessor's bytes in columns the caller leaves unset.
	// The copy cost billed below covers the initialization.
	clear(buf)
	tx.P.Tick(stats.Useful, costs.UsefulPerRow+costs.CopyCost(uint64(len(buf))))
	tx.inserts = append(tx.inserts, insertRec{idx: idx, key: key, buf: buf})
	return buf
}

// InsertRowOrdered is InsertRow for a row that is additionally published
// into the ordered secondary index oidx under okey at commit (after the
// hash entry, same deferred-insert protocol).
func (tx *TxnCtx) InsertRowOrdered(idx *index.Hash, key uint64, oidx *index.Ordered, okey uint64) []byte {
	tx.tuples++
	t := idx.Table()
	buf := tx.Alloc.Alloc(tx.P, stats.Useful, t.Schema.RowSize())
	clear(buf)
	tx.P.Tick(stats.Useful, costs.UsefulPerRow+costs.CopyCost(uint64(len(buf))))
	tx.inserts = append(tx.inserts, insertRec{idx: idx, key: key, buf: buf, oidx: oidx, okey: okey})
	return buf
}

// applyInserts materializes staged inserts after a successful Commit.
func (tx *TxnCtx) applyInserts() {
	for i := range tx.inserts {
		rec := &tx.inserts[i]
		t := rec.idx.Table()
		slot := t.AllocSlot(tx.P.ID())
		if slot < 0 {
			panic("core: table " + t.Schema.Name + " insert segment exhausted; raise capacity")
		}
		copy(t.Row(slot), rec.buf)
		tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(len(rec.buf)))
		tx.W.Scheme.InitTuple(tx, t, slot)
		if c := tx.DB.Cap; c != nil {
			c.captureInsert(tx, t, slot, rec.buf)
		}
		rec.idx.Insert(tx.P, rec.key, slot)
		if rec.oidx != nil {
			rec.oidx.Insert(tx.P, rec.okey, slot)
		}
	}
}
