package core

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/mem"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/wal"
)

// Worker is one worker thread pinned to one core (§3.2: "the number of
// worker threads equal to the number of cores").
type Worker struct {
	P      rt.Proc
	DB     *DB
	Scheme Scheme
	Ctx    TxnCtx
	Count  stats.Counters

	// Lat is the commit-latency histogram over the measurement window
	// (first-attempt start to commit, so restarts and backoff count; in
	// open-loop runs the origin is the arrival time, so queueing delay
	// counts too).
	Lat stats.Histogram

	// QDepth is the admission-queue-depth histogram, recorded at every
	// arrival ingested inside the measurement window. Always empty in
	// closed-loop runs.
	QDepth stats.Histogram

	// Overload knobs copied from Config by Run: the per-transaction
	// deadline and retry budget enforced by runTxn, and the cap for
	// exponential backoff growth. All zero in legacy configurations,
	// where runTxn behaves exactly as before.
	deadline   uint64
	retryLimit int
	backoffCap uint64

	// typer/perTxn hold the per-transaction-type attribution when the
	// bound workload implements TxnTyper (Names stay empty here; Run
	// fills them when merging workers into the Result).
	typer  TxnTyper
	perTxn []TxnStats

	// smp/scur/spend are the interval-sampling state: spend accumulates
	// the current interval scur privately and is flushed to smp when the
	// worker's clock crosses an interval boundary.
	smp   *sampler
	scur  int64
	spend intervalAgg

	// WAL state: reusable commit-record scratch (walCommit's slices and
	// walBuf grow once and are reused, keeping the logging path
	// allocation-free in steady state), the LSN of the current
	// transaction's record, and whether the scheme is timestamp-ordered
	// (decides the record's replay version).
	walCommit wal.Commit
	walBuf    []byte
	walLSN    uint64
	tsOrdered bool
}

// NewWorker constructs a worker bound to proc p, for callers that drive
// transactions themselves (scheme unit tests, external harnesses). The
// engine's Run builds its own workers.
func NewWorker(p rt.Proc, db *DB, scheme Scheme) *Worker {
	return newWorker(p, db, scheme)
}

// BindWorkload attaches per-transaction-type attribution to the worker
// when wl implements TxnTyper. The engine's Run binds automatically;
// hand-built workers (scheme tests, benchmarks) call it themselves when
// they want Lat and the per-type counters populated.
func (w *Worker) BindWorkload(wl Workload) {
	if t, ok := wl.(TxnTyper); ok {
		w.typer = t
		w.perTxn = make([]TxnStats, len(t.TxnTypes()))
	}
}

// ExecOnce runs a single attempt of txn — Begin, body, Commit (applying
// staged inserts) — and returns ErrAbort without retrying, rolling the
// transaction back first. It gives tests and external drivers per-attempt
// control that the engine's retry loop hides. Outcomes are recorded into
// the worker's latency histogram and per-type counters (no measurement
// window applies outside Run).
func (w *Worker) ExecOnce(txn Txn) error {
	start := w.P.Now()
	w.Ctx.reset()
	w.Ctx.Txn = txn
	w.Scheme.Begin(&w.Ctx)
	err := txn.Run(&w.Ctx)
	if err == nil {
		err = w.Scheme.Commit(&w.Ctx)
		if err == nil {
			w.Ctx.LogCommit()
			w.Ctx.applyInserts()
			w.finishDurable()
			w.Ctx.captureFinish()
			if h, ok := txn.(CommitHook); ok {
				h.Committed()
			}
			w.observeCommit(txn, w.P.Now(), start)
			return nil
		}
	}
	w.Scheme.Abort(&w.Ctx)
	if err == ErrUserAbort {
		// Program-logic rollback: completed work, like the engine's loop.
		w.observeCommit(txn, w.P.Now(), start)
	} else {
		w.observeAbort(txn, w.P.Now())
	}
	return err
}

// observeCommit records a completed transaction (commit or program-logic
// rollback) at time now for a transaction whose first attempt began at
// start. Accounting only: no simulated time is billed.
func (w *Worker) observeCommit(txn Txn, now, start uint64) {
	lat := now - start
	w.Lat.Record(lat)
	if w.typer != nil {
		if k := w.typer.TxnTypeOf(txn); k >= 0 && k < len(w.perTxn) {
			w.perTxn[k].Commits++
			w.perTxn[k].Latency.Record(lat)
		}
	}
	if w.smp != nil {
		w.sampleRoll(now)
		w.spend.commits++
		w.spend.lat.Record(lat)
	}
}

// observeAbort records a concurrency-control abort at time now.
func (w *Worker) observeAbort(txn Txn, now uint64) {
	if w.typer != nil {
		if k := w.typer.TxnTypeOf(txn); k >= 0 && k < len(w.perTxn) {
			w.perTxn[k].Aborts++
		}
	}
	if w.smp != nil {
		w.sampleRoll(now)
		w.spend.aborts++
	}
}

// observeShed records an arrival rejected by admission control at time
// now (discovery time, which keeps per-worker sampling monotone).
func (w *Worker) observeShed(now uint64) {
	if w.smp != nil {
		w.sampleRoll(now)
		w.spend.shed++
	}
}

// observeDeadlined records a transaction abandoned past its deadline or
// retry budget at time now.
func (w *Worker) observeDeadlined(now uint64) {
	if w.smp != nil {
		w.sampleRoll(now)
		w.spend.deadlined++
	}
}

// observeDepth records the admission-queue depth seen by an arrival.
func (w *Worker) observeDepth(now uint64, depth int) {
	w.QDepth.Record(uint64(depth))
	if w.smp != nil {
		w.sampleRoll(now)
		w.spend.qdepth.Record(uint64(depth))
	}
}

// sampleRoll flushes the pending interval counts when now has crossed
// into a later interval than the one being accumulated.
func (w *Worker) sampleRoll(now uint64) {
	if idx := w.smp.intervalOf(now); idx != w.scur {
		w.smp.advance(w.P.ID(), w.scur, idx, &w.spend)
		w.scur = idx
	}
}

// finishSampling flushes the final pending interval; called when the
// worker's run loop exits.
func (w *Worker) finishSampling() {
	if w.smp != nil {
		w.smp.finish(w.P.ID(), w.scur, &w.spend)
	}
}

// resetWindow discards observations accumulated before the measurement
// window opens (the warmup reset).
func (w *Worker) resetWindow() {
	w.Count = stats.Counters{}
	w.Lat.Reset()
	w.QDepth.Reset()
	for i := range w.perTxn {
		w.perTxn[i] = TxnStats{}
	}
	w.spend = intervalAgg{}
}

func newWorker(p rt.Proc, db *DB, scheme Scheme) *Worker {
	w := &Worker{P: p, DB: db, Scheme: scheme}
	var alloc mem.Allocator
	if db.GlobalAlloc != nil {
		alloc = db.GlobalAlloc.Bound()
	} else {
		alloc = mem.NewArena(16 * 1024)
	}
	w.Ctx = TxnCtx{P: p, W: w, DB: db, Alloc: alloc}
	w.Ctx.State = scheme.NewTxnState(w)
	_, w.tsOrdered = scheme.(TSOrderedScheme)
	return w
}

// finishDurable blocks until the committed transaction's log record is
// durable — the group-commit acknowledgement point. Only the native
// runtime's async writer ever waits; the wait time is billed to the LOG
// component. Accounting-only (sync) writers are durable at append.
func (w *Worker) finishDurable() {
	lw := w.DB.Wal
	if lw == nil || w.walLSN == 0 {
		return
	}
	lsn := w.walLSN
	w.walLSN = 0
	if !lw.Async() {
		return
	}
	t0 := w.P.Now()
	lw.WaitDurable(lsn)
	w.P.Stats().Add(stats.Log, w.P.Now()-t0)
}

// serveClosed is the paper's closed-loop worker body: draw a transaction,
// run it to completion, draw the next. Stop and Fault are nil-checked
// only in legacy configurations, so the schedule is byte-identical to the
// pre-overload engine (the golden signature pins that).
func (w *Worker) serveClosed(wl Workload, cfg Config, warmEnd, end uint64) {
	p := w.P
	stop, fault := cfg.Stop, cfg.Fault
	resetDone := false
	for {
		now := p.Now()
		if now >= end {
			break
		}
		if stop != nil && stop.Load() {
			break
		}
		if !resetDone && now >= warmEnd {
			p.Stats().Reset()
			w.resetWindow()
			resetDone = true
		}
		if fault != nil {
			if d := fault.Delay(p.ID(), now); d > 0 {
				p.Tick(stats.Idle, d)
				continue
			}
		}
		txn := wl.Next(p)
		w.runTxn(txn, p.Now(), warmEnd, end, cfg.AbortBackoff)
	}
}

// runTxn executes txn to commit or user-abort, restarting on CC aborts,
// and updates counters for work completed inside [warmEnd, end). start is
// the latency origin: the first-attempt start in the closed loop, the
// arrival time in the open loop. When the worker has a deadline, a
// transaction that has not committed by start+deadline is abandoned with
// ErrDeadline instead of restarted (a commit already in flight still
// counts — the deadline gates retries, not completion); a retry budget
// abandons the same way after retryLimit failed attempts. Both outcomes
// count in Deadlined, separately from CC aborts.
func (w *Worker) runTxn(txn Txn, start, warmEnd, end uint64, backoff uint64) error {
	p := w.P
	attempt := 0
	for {
		now := p.Now()
		if now >= end {
			return nil
		}
		if w.deadline > 0 && now >= start+w.deadline {
			if now >= warmEnd {
				w.Count.Deadlined++
				w.observeDeadlined(now)
			}
			return ErrDeadline
		}
		p.Stats().BeginAttempt()
		w.Ctx.reset()
		w.Ctx.Txn = txn
		p.Tick(stats.Useful, costs.TxnSetup)
		w.Scheme.Begin(&w.Ctx)

		err := txn.Run(&w.Ctx)
		if err == nil {
			err = w.Scheme.Commit(&w.Ctx)
			if err == nil {
				w.Ctx.LogCommit()
				w.Ctx.applyInserts()
				w.finishDurable()
				w.Ctx.captureFinish()
			}
		}

		now = p.Now()
		inWindow := now >= warmEnd && now < end
		switch err {
		case nil:
			p.Stats().CommitAttempt()
			if inWindow {
				w.Count.Commits++
				w.Count.Tuples += w.Ctx.tuples
				w.observeCommit(txn, now, start)
			}
			if h, ok := txn.(CommitHook); ok {
				h.Committed()
			}
			return nil
		case ErrUserAbort:
			// Program-logic rollback: completed work per TPC-C.
			w.Scheme.Abort(&w.Ctx)
			p.Tick(stats.Abort, costs.AbortFixed)
			p.Stats().CommitAttempt()
			if inWindow {
				w.Count.Commits++
				w.Count.Tuples += w.Ctx.tuples
				w.observeCommit(txn, now, start)
			}
			return ErrUserAbort
		case ErrAbort:
			w.Scheme.Abort(&w.Ctx)
			p.Tick(stats.Abort, costs.AbortFixed)
			p.Stats().AbortAttempt()
			if inWindow {
				w.Count.Aborts++
				w.observeAbort(txn, now)
			}
			attempt++
			if w.retryLimit > 0 && attempt >= w.retryLimit {
				if inWindow {
					w.Count.Deadlined++
					w.observeDeadlined(now)
				}
				return ErrDeadline
			}
			if backoff > 0 {
				// With no cap the mean stays backoff for every attempt,
				// so this draw is identical to the historical fixed-
				// backoff loop and the golden schedule is preserved.
				mean := backoff
				if w.backoffCap > 0 {
					mean = backoffMean(backoff, w.backoffCap, attempt)
				}
				p.Tick(stats.Abort, uint64(p.Rand().Int63n(int64(2*mean)))+1)
			}
			// Restart the same transaction.
		default:
			panic("core: transaction returned unexpected error: " + err.Error())
		}
	}
}
