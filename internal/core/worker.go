package core

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/mem"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Worker is one worker thread pinned to one core (§3.2: "the number of
// worker threads equal to the number of cores").
type Worker struct {
	P      rt.Proc
	DB     *DB
	Scheme Scheme
	Ctx    TxnCtx
	Count  stats.Counters
}

// NewWorker constructs a worker bound to proc p, for callers that drive
// transactions themselves (scheme unit tests, external harnesses). The
// engine's Run builds its own workers.
func NewWorker(p rt.Proc, db *DB, scheme Scheme) *Worker {
	return newWorker(p, db, scheme)
}

// ExecOnce runs a single attempt of txn — Begin, body, Commit (applying
// staged inserts) — and returns ErrAbort without retrying, rolling the
// transaction back first. It gives tests and external drivers per-attempt
// control that the engine's retry loop hides.
func (w *Worker) ExecOnce(txn Txn) error {
	w.Ctx.reset()
	w.Ctx.Txn = txn
	w.Scheme.Begin(&w.Ctx)
	err := txn.Run(&w.Ctx)
	if err == nil {
		err = w.Scheme.Commit(&w.Ctx)
		if err == nil {
			w.Ctx.applyInserts()
			if h, ok := txn.(CommitHook); ok {
				h.Committed()
			}
			return nil
		}
	}
	w.Scheme.Abort(&w.Ctx)
	return err
}

func newWorker(p rt.Proc, db *DB, scheme Scheme) *Worker {
	w := &Worker{P: p, DB: db, Scheme: scheme}
	var alloc mem.Allocator
	if db.GlobalAlloc != nil {
		alloc = db.GlobalAlloc.Bound()
	} else {
		alloc = mem.NewArena(16 * 1024)
	}
	w.Ctx = TxnCtx{P: p, W: w, DB: db, Alloc: alloc}
	w.Ctx.State = scheme.NewTxnState(w)
	return w
}

// runTxn executes txn to commit or user-abort, restarting on CC aborts,
// and updates counters for work completed inside [warmEnd, end).
func (w *Worker) runTxn(txn Txn, warmEnd, end uint64, backoff uint64) {
	p := w.P
	for {
		if p.Now() >= end {
			return
		}
		p.Stats().BeginAttempt()
		w.Ctx.reset()
		w.Ctx.Txn = txn
		p.Tick(stats.Useful, costs.TxnSetup)
		w.Scheme.Begin(&w.Ctx)

		err := txn.Run(&w.Ctx)
		if err == nil {
			err = w.Scheme.Commit(&w.Ctx)
			if err == nil {
				w.Ctx.applyInserts()
			}
		}

		now := p.Now()
		inWindow := now >= warmEnd && now < end
		switch err {
		case nil:
			p.Stats().CommitAttempt()
			if inWindow {
				w.Count.Commits++
				w.Count.Tuples += w.Ctx.tuples
			}
			if h, ok := txn.(CommitHook); ok {
				h.Committed()
			}
			return
		case ErrUserAbort:
			// Program-logic rollback: completed work per TPC-C.
			w.Scheme.Abort(&w.Ctx)
			p.Tick(stats.Abort, costs.AbortFixed)
			p.Stats().CommitAttempt()
			if inWindow {
				w.Count.Commits++
				w.Count.Tuples += w.Ctx.tuples
			}
			return
		case ErrAbort:
			w.Scheme.Abort(&w.Ctx)
			p.Tick(stats.Abort, costs.AbortFixed)
			p.Stats().AbortAttempt()
			if inWindow {
				w.Count.Aborts++
			}
			if backoff > 0 {
				p.Tick(stats.Abort, uint64(p.Rand().Int63n(int64(2*backoff)))+1)
			}
			// Restart the same transaction.
		default:
			panic("core: transaction returned unexpected error: " + err.Error())
		}
	}
}
