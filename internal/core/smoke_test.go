package core_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/ycsb"
)

func allSchemes() map[string]func() core.Scheme {
	return map[string]func() core.Scheme{
		"DL_DETECT": func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) },
		"NO_WAIT":   func() core.Scheme { return twopl.New(twopl.NoWait, twopl.Options{}) },
		"WAIT_DIE":  func() core.Scheme { return twopl.New(twopl.WaitDie, twopl.Options{}) },
		"TIMESTAMP": func() core.Scheme { return to.New(tsalloc.Atomic) },
		"MVCC":      func() core.Scheme { return mvcc.New(tsalloc.Atomic) },
		"OCC":       func() core.Scheme { return occ.New(tsalloc.Atomic) },
	}
}

func smokeConfig() ycsb.Config {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 4096
	cfg.FieldSize = 20
	cfg.Theta = 0.6
	return cfg
}

func runSim(t *testing.T, cores int, mk func() core.Scheme, ycfg ycsb.Config, ccfg core.Config) core.Result {
	t.Helper()
	eng := sim.New(cores, 7)
	db := core.NewDB(eng)
	wl := ycsb.Build(db, ycfg)
	return core.Run(db, mk(), wl, ccfg)
}

func TestSchemesSmokeSim(t *testing.T) {
	ccfg := core.Config{WarmupCycles: 100_000, MeasureCycles: 500_000, AbortBackoff: 500}
	for name, mk := range allSchemes() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			res := runSim(t, 8, mk, smokeConfig(), ccfg)
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing: %+v", name, res)
			}
			t.Logf("%s", res.String())
		})
	}
}

func TestHStoreSmokeSim(t *testing.T) {
	ycfg := smokeConfig()
	ycfg.Partitioned = true
	ycfg.MPFraction = 0.2
	ycfg.MPParts = 2
	ccfg := core.Config{WarmupCycles: 100_000, MeasureCycles: 500_000, AbortBackoff: 500}
	res := runSim(t, 8, func() core.Scheme { return hstore.New(tsalloc.Atomic) }, ycfg, ccfg)
	if res.Commits == 0 {
		t.Fatalf("HSTORE committed nothing: %+v", res)
	}
	if res.Aborts != 0 {
		t.Fatalf("HSTORE must not have CC aborts on YCSB, got %d", res.Aborts)
	}
	t.Logf("%s", res.String())
}

func TestSchemesDeterministicSim(t *testing.T) {
	ccfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 300_000, AbortBackoff: 500}
	for name, mk := range allSchemes() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			a := runSim(t, 4, mk, smokeConfig(), ccfg)
			b := runSim(t, 4, mk, smokeConfig(), ccfg)
			if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Tuples != b.Tuples {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

func TestSchemesSmokeNative(t *testing.T) {
	ccfg := core.Config{WarmupCycles: 2_000_000, MeasureCycles: 20_000_000, AbortBackoff: 500} // ns
	for name, mk := range allSchemes() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rtm := native.New(4, 7)
			db := core.NewDB(rtm)
			wl := ycsb.Build(db, smokeConfig())
			res := core.Run(db, mk(), wl, ccfg)
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing natively", name)
			}
		})
	}
}

func TestReadOnlyNoAborts2PL(t *testing.T) {
	ycfg := smokeConfig()
	ycfg.ReadPct = 1.0
	ccfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 300_000}
	res := runSim(t, 8, func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }, ycfg, ccfg)
	if res.Aborts != 0 {
		t.Fatalf("read-only workload should not abort under 2PL, got %d aborts", res.Aborts)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

var _ = rt.Proc(nil)
