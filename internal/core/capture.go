package core

import (
	"abyss1000/internal/sercheck"
	"abyss1000/internal/storage"
)

// Capture records the history of committed transactions — which row
// versions each one read and which it wrote — for the serializability
// checker in internal/sercheck. It is attached to a DB by Config.Capture
// exactly like the WAL: a nil DB.Cap is the only cost when it is off,
// and when it is on every operation is accounting-only (no Tick, Sync,
// latch or billed memory traffic), so the schedule and the Result are
// identical to an uncaptured run.
//
// Version identity is per (table, slot). For schemes whose same-slot
// outcome is decided by commit order (2PL variants, OCC, H-STORE) a
// per-slot counter is bumped at the scheme's commit point while its
// locks or latches still pin the slot, so the counter order IS the
// version order. Timestamp-ordered schemes (TIMESTAMP, MVCC) install
// values in timestamp order regardless of commit arrival, so their
// version id is the transaction timestamp and reads report the wts they
// observed (TxnCtx.CaptureReadVer). Version 0 is the initially loaded
// row in both regimes.
//
// Capture supports one measurement run on a freshly populated database:
// the initial-state snapshot is taken when the run starts and version 0
// must mean "untouched since load" for every slot.
type Capture struct {
	// vers[tableID][slot] is the committed-write counter; bumped and
	// sampled only under the owning scheme's per-slot exclusion, so the
	// plain (unbilled, non-atomic) slices are race-free on both runtimes.
	vers [][]uint64

	// init[tableID][slot] holds the post-population row images.
	init []map[int][]byte

	// logs[worker] collects that worker's committed transactions; workers
	// only touch their own slice, and the runtime's Run join publishes
	// them to the verifier.
	logs [][]capTxn
}

type capAccess struct {
	table int
	slot  int
	ver   uint64
}

type capWrite struct {
	table int
	slot  int
	ver   uint64
	image []byte // private copy, taken at the commit point
}

type capTxn struct {
	worker int
	ts     uint64
	reads  []capAccess
	writes []capWrite
}

// newCapture snapshots db's populated state (setup rows plus any slots
// earlier runs inserted) as version 0 and sizes the version counters.
func newCapture(db *DB) *Capture {
	tables := db.Catalog.Tables()
	c := &Capture{
		vers: make([][]uint64, len(tables)),
		init: make([]map[int][]byte, len(tables)),
		logs: make([][]capTxn, db.RT.NumProcs()),
	}
	for _, t := range tables {
		c.vers[t.ID] = make([]uint64, t.Capacity())
		m := make(map[int][]byte, t.Loaded())
		snap := func(slot int) {
			img := make([]byte, t.Schema.RowSize())
			copy(img, t.Row(slot))
			m[slot] = img
		}
		for s := 0; s < t.Loaded(); s++ {
			snap(s)
		}
		for seg := 0; seg < t.NumSegs(); seg++ {
			start, next := t.SegRange(seg)
			for s := start; s < next; s++ {
				snap(s)
			}
		}
		c.init[t.ID] = m
	}
	return c
}

// CaptureRead records that the transaction observed the current
// committed version of (t, slot). Schemes whose version order is commit
// order call it at the point their rules fix which version the read
// sees — under the tuple lock, latch or partition lock, so the sample
// is ordered against the counter bump of any concurrent committer.
// No-op when capture is off; reads of the transaction's own writes and
// repeat reads of the same slot are filtered out.
func (tx *TxnCtx) CaptureRead(t *storage.Table, slot int) {
	c := tx.DB.Cap
	if c == nil {
		return
	}
	tx.captureRead(t, slot, c.vers[t.ID][slot])
}

// CaptureReadVer is CaptureRead for timestamp-ordered schemes
// (TIMESTAMP, MVCC): ver is the wts of the version the read observed.
func (tx *TxnCtx) CaptureReadVer(t *storage.Table, slot int, ver uint64) {
	if tx.DB.Cap == nil {
		return
	}
	tx.captureRead(t, slot, ver)
}

func (tx *TxnCtx) captureRead(t *storage.Table, slot int, ver uint64) {
	// A read of our own pending write carries no dependency.
	for i := range tx.walWrites {
		w := &tx.walWrites[i]
		if w.t == t && w.slot == slot {
			return
		}
	}
	// Every scheme gives repeatable reads within one transaction, so the
	// first record of a slot is THE version this transaction saw.
	for i := range tx.capReads {
		r := &tx.capReads[i]
		if r.table == t.ID && r.slot == slot {
			return
		}
	}
	tx.capReads = append(tx.capReads, capAccess{table: t.ID, slot: slot, ver: ver})
}

// commitPoint assigns this transaction's write versions. Called from
// LogCommit, i.e. at the scheme's commit point: counter schemes still
// hold their write locks/latches here, so the bump is exclusive per
// slot and ordered against every reader's sample.
func (c *Capture) commitPoint(tx *TxnCtx) {
	for i := range tx.walWrites {
		w := &tx.walWrites[i]
		ver := tx.TS
		if !tx.W.tsOrdered {
			c.vers[w.t.ID][w.slot]++
			ver = c.vers[w.t.ID][w.slot]
		}
		img := make([]byte, len(w.buf))
		copy(img, w.buf)
		tx.capWrites = append(tx.capWrites, capWrite{table: w.t.ID, slot: w.slot, ver: ver, image: img})
	}
}

// captureInsert records a committed insert's write. Called from
// applyInserts before the index entry is published, so no reader can
// sample the slot's counter before the bump.
func (c *Capture) captureInsert(tx *TxnCtx, t *storage.Table, slot int, buf []byte) {
	ver := tx.TS
	if !tx.W.tsOrdered {
		c.vers[t.ID][slot]++
		ver = c.vers[t.ID][slot]
	}
	img := make([]byte, len(buf))
	copy(img, buf)
	tx.capWrites = append(tx.capWrites, capWrite{table: t.ID, slot: slot, ver: ver, image: img})
}

// captureFinish appends the completed transaction to its worker's log.
// Called only on the committed path, after applyInserts; rolled-back
// transactions leave nothing behind.
func (tx *TxnCtx) captureFinish() {
	c := tx.DB.Cap
	if c == nil {
		return
	}
	if len(tx.capReads) == 0 && len(tx.capWrites) == 0 {
		return
	}
	id := tx.P.ID()
	c.logs[id] = append(c.logs[id], capTxn{
		worker: id,
		ts:     tx.TS,
		reads:  append([]capAccess(nil), tx.capReads...),
		writes: append([]capWrite(nil), tx.capWrites...),
	})
}

// Committed returns the number of transactions the capture recorded.
func (c *Capture) Committed() int {
	n := 0
	for _, l := range c.logs {
		n += len(l)
	}
	return n
}

// BuildHistory assembles the captured run into the checker's input: the
// initial snapshot, every worker's committed transactions (IDs assigned
// deterministically by worker then commit order), and the engine's
// final committed state read the same way DumpState reads it (the live
// row, or the scheme's LatestCommitted for MVCC). Quiesced use only.
func BuildHistory(db *DB, scheme Scheme) *sercheck.History {
	c := db.Cap
	if c == nil {
		panic("core: BuildHistory without Config.Capture")
	}
	var cr CommittedRower
	if scheme != nil {
		cr, _ = scheme.(CommittedRower)
	}
	row := func(t *storage.Table, slot int) []byte {
		if cr != nil {
			if img := cr.LatestCommitted(t, slot); img != nil {
				return img
			}
		}
		return t.Row(slot)
	}
	h := &sercheck.History{}
	for _, t := range db.Catalog.Tables() {
		final := make(map[int][]byte, t.Loaded())
		dump := func(slot int) {
			img := make([]byte, t.Schema.RowSize())
			copy(img, row(t, slot))
			final[slot] = img
		}
		for s := 0; s < t.Loaded(); s++ {
			dump(s)
		}
		for seg := 0; seg < t.NumSegs(); seg++ {
			start, next := t.SegRange(seg)
			for s := start; s < next; s++ {
				dump(s)
			}
		}
		h.Tables = append(h.Tables, sercheck.Table{
			ID:      t.ID,
			Name:    t.Schema.Name,
			RowSize: t.Schema.RowSize(),
			Init:    c.init[t.ID],
			Final:   final,
		})
	}
	id := 0
	for _, l := range c.logs {
		for i := range l {
			ct := &l[i]
			id++
			txn := sercheck.Txn{ID: id, Worker: ct.worker, TS: ct.ts}
			for _, r := range ct.reads {
				txn.Reads = append(txn.Reads, sercheck.Access{Table: r.table, Slot: r.slot, Ver: r.ver})
			}
			for _, w := range ct.writes {
				txn.Writes = append(txn.Writes, sercheck.Write{Table: w.table, Slot: w.slot, Ver: w.ver, Image: w.image})
			}
			h.Txns = append(h.Txns, txn)
		}
	}
	return h
}

// VerifyCapture builds the captured history and checks it for
// serializability and final-state equivalence.
func VerifyCapture(db *DB, scheme Scheme) *sercheck.Report {
	return sercheck.Check(BuildHistory(db, scheme))
}
