package core

import (
	"errors"

	"abyss1000/internal/wal"
)

// Checkpoint chunk sizes: rows per TypeCkptRows record and entries per
// TypeCkptIndex record. Small enough that a torn checkpoint wastes little,
// large enough that framing overhead is noise.
const (
	ckptRowChunk   = 256
	ckptIndexChunk = 1024
)

// ErrNoWAL is returned by Checkpoint and recovery helpers when the DB has
// no attached log.
var ErrNoWAL = errors.New("core: no WAL attached to this DB")

// Checkpoint appends a quiesced snapshot of every table — setup rows,
// runtime-inserted rows, per-worker allocation cursors, and the indexes'
// runtime-inserted entries — to the attached WAL and flushes it. The
// caller must guarantee quiescence (no run in progress); the engine only
// checkpoints between runs. Recovery starts replay at the last complete
// Begin/End pair, so commits logged before it stop being needed; a crash
// mid-checkpoint leaves an incomplete pair that recovery ignores,
// falling back to the previous checkpoint (or the stream start).
//
// scheme is the scheme of the preceding run (nil if none): schemes whose
// committed state lives outside the table slab (CommittedRower — MVCC's
// version chains) have their committed images snapshotted, not the slab.
func Checkpoint(db *DB, scheme Scheme) error {
	w := db.Wal
	if w == nil {
		return ErrNoWAL
	}
	var cr CommittedRower
	if scheme != nil {
		cr, _ = scheme.(CommittedRower)
	}
	db.walEpoch++
	id := db.walEpoch
	w.Append(wal.AppendCkptBegin(nil, id))
	var buf, rowBuf []byte
	for _, t := range db.Catalog.Tables() {
		rs := t.Schema.RowSize()
		chunk := func(start, n int) []byte {
			if cr == nil {
				return t.Rows(start, n)
			}
			rowBuf = rowBuf[:0]
			for s := start; s < start+n; s++ {
				img := cr.LatestCommitted(t, s)
				if img == nil {
					img = t.Row(s)
				}
				rowBuf = append(rowBuf, img...)
			}
			return rowBuf
		}
		emit := func(start, end int) {
			for s := start; s < end; s += ckptRowChunk {
				n := end - s
				if n > ckptRowChunk {
					n = ckptRowChunk
				}
				buf = wal.AppendCkptRows(buf[:0], &wal.CkptRows{
					Table: t.ID, Start: s, Count: n, RowSize: rs, Rows: chunk(s, n),
				})
				w.Append(buf)
			}
		}
		emit(0, t.Loaded())
		alloc := wal.CkptAlloc{Table: t.ID, Next: make([]int, t.NumSegs())}
		for seg := 0; seg < t.NumSegs(); seg++ {
			start, next := t.SegRange(seg)
			emit(start, next)
			alloc.Next[seg] = next
		}
		buf = wal.AppendCkptAlloc(buf[:0], &alloc)
		w.Append(buf)
	}
	emitIndex := func(ord int, loaded int, ordered bool, ranger func(func(key uint64, slot int))) {
		var entries []wal.CkptIndexEntry
		flush := func() {
			if len(entries) == 0 {
				return
			}
			buf = wal.AppendCkptIndex(buf[:0], &wal.CkptIndex{Index: ord, Ordered: ordered, Entries: entries})
			w.Append(buf)
			entries = entries[:0]
		}
		ranger(func(key uint64, slot int) {
			// Setup-time entries are rebuilt by workload setup before
			// recovery; only runtime inserts (slots past the loaded
			// prefix) need to be in the log.
			if slot >= loaded {
				entries = append(entries, wal.CkptIndexEntry{Key: key, Slot: slot})
				if len(entries) >= ckptIndexChunk {
					flush()
				}
			}
		})
		flush()
	}
	for ord, h := range db.indexOrder {
		emitIndex(ord, h.Table().Loaded(), false, h.Range)
	}
	for ord, o := range db.ordOrder {
		emitIndex(ord, o.Table().Loaded(), true, o.Range)
	}
	w.Append(wal.AppendCkptEnd(nil, id))
	return w.Flush()
}
