package core

import (
	"math"
	"testing"
)

func TestBackoffMean(t *testing.T) {
	cases := []struct {
		base, cap uint64
		attempt   int
		want      uint64
	}{
		{0, 0, 1, 0},       // backoff disabled
		{1000, 0, 1, 1000}, // no cap: mean stays base forever
		{1000, 0, 7, 1000},
		{1000, 16000, 1, 1000}, // exponential: base << (attempt-1)
		{1000, 16000, 2, 2000},
		{1000, 16000, 4, 8000},
		{1000, 16000, 5, 16000},  // hits the cap exactly
		{1000, 16000, 9, 16000},  // stays capped
		{1000, 3000, 3, 3000},    // cap between powers
		{1000, 500, 1, 500},      // cap below base clamps immediately
		{1000, 16000, 63, 16000}, // deep attempts must not overflow
	}
	for _, c := range cases {
		if got := backoffMean(c.base, c.cap, c.attempt); got != c.want {
			t.Errorf("backoffMean(%d, %d, %d) = %d, want %d", c.base, c.cap, c.attempt, got, c.want)
		}
	}
}

func TestArrivalGenDeterministicAndRateAccurate(t *testing.T) {
	a := Arrivals{Process: ArrivalPoisson, RateTPS: 1e6, Seed: 123}
	const freq = 1e9
	gen := func() []uint64 {
		g := newArrivalGen(a, 3, 4, freq)
		out := make([]uint64, 2000)
		for i := range out {
			out[i] = g.take()
		}
		return out
	}
	first, second := gen(), gen()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("arrival %d differs between identical generators: %d vs %d", i, first[i], second[i])
		}
	}
	// Monotone non-decreasing.
	for i := 1; i < len(first); i++ {
		if first[i] < first[i-1] {
			t.Fatalf("arrivals regressed at %d: %d < %d", i, first[i], first[i-1])
		}
	}
	// Mean interarrival ≈ freq / (rate / nworkers) = 4000 cycles; with
	// 2000 exponential draws the sample mean lands within a few percent.
	mean := float64(first[len(first)-1]) / float64(len(first))
	if math.Abs(mean-4000) > 400 {
		t.Fatalf("per-worker mean interarrival = %.0f cycles, want ~4000", mean)
	}
	// Workers draw independent streams.
	other := newArrivalGen(a, 0, 4, freq)
	if other.take() == first[0] {
		t.Fatal("different workers should not share an arrival stream")
	}
}

func TestAdmitQueueRing(t *testing.T) {
	q := newAdmitQueue(3)
	for i := uint64(1); i <= 3; i++ {
		if !q.push(i) {
			t.Fatalf("push %d rejected below bound", i)
		}
	}
	if q.push(4) {
		t.Fatal("push above bound must be rejected")
	}
	if q.depth() != 3 {
		t.Fatalf("depth = %d, want 3", q.depth())
	}
	if v, ok := q.pop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v, want 1,true", v, ok)
	}
	if !q.push(4) {
		t.Fatal("push after pop should fit")
	}
	for want := uint64(2); want <= 4; want++ {
		if v, ok := q.pop(); !ok || v != want {
			t.Fatalf("FIFO order broken: got %d, want %d", v, want)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue")
	}

	// Unbounded queues grow and preserve order across the growth.
	u := newAdmitQueue(0)
	for i := uint64(0); i < 200; i++ {
		if !u.push(i) {
			t.Fatalf("unbounded push %d rejected", i)
		}
	}
	for i := uint64(0); i < 200; i++ {
		if v, ok := u.pop(); !ok || v != i {
			t.Fatalf("unbounded FIFO broken at %d: %d,%v", i, v, ok)
		}
	}
}

func TestHighWater(t *testing.T) {
	if highWater(16) != 8 || highWater(1) != 1 || highWater(0) != 64 {
		t.Fatalf("high-water marks wrong: %d %d %d", highWater(16), highWater(1), highWater(0))
	}
}

type twoTypes struct{}

func (twoTypes) TxnTypes() []string { return []string{"alpha", "beta"} }
func (twoTypes) TxnTypeOf(Txn) int  { return 0 }

func TestShedMaskFor(t *testing.T) {
	if shedMaskFor(nil, "alpha") != 0 {
		t.Fatal("no typer means no mask")
	}
	if shedMaskFor(twoTypes{}, "") != 0 {
		t.Fatal("empty spec means no mask")
	}
	if got := shedMaskFor(twoTypes{}, "beta"); got != 2 {
		t.Fatalf("mask for beta = %b, want 10", got)
	}
	if got := shedMaskFor(twoTypes{}, "alpha, beta"); got != 3 {
		t.Fatalf("mask for both = %b, want 11", got)
	}
	if got := shedMaskFor(twoTypes{}, "gamma"); got != 0 {
		t.Fatalf("unknown names must be ignored, got %b", got)
	}
}
