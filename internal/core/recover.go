package core

import (
	"fmt"

	"abyss1000/internal/storage"
	"abyss1000/internal/wal"
)

// RecoverInfo summarizes what a recovery replayed.
type RecoverInfo struct {
	// Records is the number of complete log records scanned.
	Records int

	// TornBytes is the length of the incomplete tail dropped by the scan
	// (non-zero exactly when the log was torn by a crash).
	TornBytes int64

	// Checkpoint is the ID of the complete checkpoint recovery started
	// from, or zero when replay started at the head of the stream.
	Checkpoint uint64

	// Commits, Updates and Inserts count the replayed work (commits
	// whose updates were all superseded by newer versions still count).
	Commits, Updates, Inserts int
}

// Recover replays the log stream onto db, which must be freshly set up by
// the same deterministic workload setup that produced the logged run
// (same tables in the same order, same loaded rows, same indexes in the
// same registration order). After Recover the tables hold exactly the
// state the complete log prefix commits to: the durable pre-crash
// committed state.
//
// Recovery is idempotent — replaying the same stream onto an
// already-recovered db reaches the same state, because updates rewrite
// the same images and inserts find their keys already present and
// overwrite in place instead of allocating again.
func Recover(db *DB, stream []byte) (RecoverInfo, error) {
	recs, scan, err := wal.Scan(stream)
	if err != nil {
		return RecoverInfo{}, err
	}
	ri := RecoverInfo{Records: len(recs), TornBytes: scan.TornBytes}
	tables := db.Catalog.Tables()

	// Find the last COMPLETE checkpoint: a Begin whose matching End also
	// made it into the complete prefix. An unmatched Begin is a crash
	// mid-checkpoint; its partial data is skipped entirely.
	begin, end := -1, -1
	open := make(map[uint64]int)
	for i, r := range recs {
		switch r.Type {
		case wal.TypeCkptBegin:
			open[r.ID] = i
		case wal.TypeCkptEnd:
			if b, ok := open[r.ID]; ok {
				begin, end = b, i
				ri.Checkpoint = r.ID
			}
		}
	}

	// floors[t][slot] is the highest replay version applied to the slot;
	// allocated lazily per table, only when versioned (T/O) records show
	// up. An epoch record resets them: a new run draws fresh timestamps.
	floors := make([][]uint64, len(tables))

	if end >= 0 {
		for i := begin; i <= end; i++ {
			if err := applyCkptRecord(db, tables, &recs[i]); err != nil {
				return ri, err
			}
		}
	}
	for i := end + 1; i < len(recs); i++ {
		r := &recs[i]
		switch r.Type {
		case wal.TypeEpoch:
			for t := range floors {
				floors[t] = nil
			}
		case wal.TypeCommit:
			if err := applyCommit(db, tables, floors, r.Commit, &ri); err != nil {
				return ri, err
			}
		default:
			// Partial data of an incomplete (torn) later checkpoint: the
			// commit records since the last complete checkpoint already
			// cover everything it would restore.
		}
	}
	return ri, nil
}

// applyCkptRecord restores one checkpoint record's payload.
func applyCkptRecord(db *DB, tables []*storage.Table, r *wal.Record) error {
	switch r.Type {
	case wal.TypeCkptRows:
		cr := r.Rows
		if cr.Table < 0 || cr.Table >= len(tables) {
			return fmt.Errorf("core: recover: checkpoint rows for unknown table %d", cr.Table)
		}
		t := tables[cr.Table]
		if cr.RowSize != t.Schema.RowSize() || cr.Start < 0 || cr.Start+cr.Count > t.Capacity() {
			return fmt.Errorf("core: recover: checkpoint rows of table %d do not fit its schema (start %d count %d rowsize %d)", cr.Table, cr.Start, cr.Count, cr.RowSize)
		}
		copy(t.Rows(cr.Start, cr.Count), cr.Rows)
	case wal.TypeCkptAlloc:
		a := r.Alloc
		if a.Table < 0 || a.Table >= len(tables) {
			return fmt.Errorf("core: recover: checkpoint cursors for unknown table %d", a.Table)
		}
		t := tables[a.Table]
		if len(a.Next) > t.NumSegs() {
			return fmt.Errorf("core: recover: checkpoint has %d insert segments for table %d, DB has %d", len(a.Next), a.Table, t.NumSegs())
		}
		for w, next := range a.Next {
			t.RestoreSegNext(w, next)
		}
	case wal.TypeCkptIndex:
		x := r.Index
		if x.Index < 0 || x.Index >= len(db.indexOrder) {
			return fmt.Errorf("core: recover: checkpoint entries for unknown index %d", x.Index)
		}
		h := db.indexOrder[x.Index]
		tcap := h.Table().Capacity()
		for _, e := range x.Entries {
			if e.Slot < 0 || e.Slot >= tcap {
				return fmt.Errorf("core: recover: checkpoint index %d maps key %d to slot %d outside table capacity %d", x.Index, e.Key, e.Slot, tcap)
			}
			if _, ok := h.LoadLookup(e.Key); !ok {
				h.LoadInsert(e.Key, e.Slot)
			}
		}
	case wal.TypeCkptOIndex:
		x := r.Index
		if x.Index < 0 || x.Index >= len(db.ordOrder) {
			return fmt.Errorf("core: recover: checkpoint entries for unknown ordered index %d", x.Index)
		}
		o := db.ordOrder[x.Index]
		tcap := o.Table().Capacity()
		for _, e := range x.Entries {
			if e.Slot < 0 || e.Slot >= tcap {
				return fmt.Errorf("core: recover: checkpoint ordered index %d maps key %d to slot %d outside table capacity %d", x.Index, e.Key, e.Slot, tcap)
			}
			if s, ok := o.LoadLookup(e.Key); !ok || s != e.Slot {
				o.LoadInsert(e.Key, e.Slot)
			}
		}
	}
	return nil
}

// applyCommit replays one committed transaction.
func applyCommit(db *DB, tables []*storage.Table, floors [][]uint64, c *wal.Commit, ri *RecoverInfo) error {
	ri.Commits++
	for i := range c.Updates {
		u := &c.Updates[i]
		if u.Table < 0 || u.Table >= len(tables) {
			return fmt.Errorf("core: recover: update of unknown table %d", u.Table)
		}
		t := tables[u.Table]
		if u.Slot < 0 || u.Slot >= t.Capacity() || len(u.Image) != t.Schema.RowSize() {
			return fmt.Errorf("core: recover: update of table %d slot %d (image %d bytes) does not fit", u.Table, u.Slot, len(u.Image))
		}
		if c.Ver > 0 {
			// Timestamp-ordered commit: keep the highest version. Log
			// order already equals commit-point order for Ver==0 records.
			fl := floors[u.Table]
			if fl == nil {
				fl = make([]uint64, t.Capacity())
				floors[u.Table] = fl
			}
			if c.Ver < fl[u.Slot] {
				continue
			}
			fl[u.Slot] = c.Ver
		}
		copy(t.Row(u.Slot), u.Image)
		ri.Updates++
	}
	for i := range c.Inserts {
		in := &c.Inserts[i]
		if in.Index < 0 || in.Index >= len(db.indexOrder) {
			return fmt.Errorf("core: recover: insert into unknown index %d", in.Index)
		}
		h := db.indexOrder[in.Index]
		t := h.Table()
		if in.Table != t.ID || len(in.Image) != t.Schema.RowSize() {
			return fmt.Errorf("core: recover: insert record (table %d, %d bytes) does not match index %d over table %d", in.Table, len(in.Image), in.Index, t.ID)
		}
		if in.OIndex < 0 || in.OIndex > len(db.ordOrder) {
			return fmt.Errorf("core: recover: insert names unknown ordered index %d", in.OIndex-1)
		}
		if slot, ok := h.LoadLookup(in.Key); ok {
			// Replaying over an already-recovered (or checkpointed)
			// state: the key exists, so overwrite in place — this is
			// what makes recovery idempotent.
			copy(t.Row(slot), in.Image)
			if in.OIndex > 0 {
				o := db.ordOrder[in.OIndex-1]
				if s, ok := o.LoadLookup(in.OKey); !ok || s != slot {
					o.LoadInsert(in.OKey, slot)
				}
			}
		} else {
			slot := t.AllocSlot(c.Worker)
			if slot < 0 {
				return fmt.Errorf("core: recover: insert segment of table %d worker %d exhausted", t.ID, c.Worker)
			}
			copy(t.Row(slot), in.Image)
			h.LoadInsert(in.Key, slot)
			if in.OIndex > 0 {
				db.ordOrder[in.OIndex-1].LoadInsert(in.OKey, slot)
			}
		}
		ri.Inserts++
	}
	return nil
}
