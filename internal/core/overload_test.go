package core_test

// Overload-tier semantics, pinned on the deterministic sim runtime:
// admission control bounds queue depth and tail latency past saturation
// (and sheds the excess), an unbounded queue grows without bound under
// the same offered load, deadlines and retry budgets count separately
// from CC aborts, and the per-interval samples' overload counters sum
// exactly to the final Result.

import (
	"reflect"
	"sync/atomic"
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/faultinject"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

const overloadCores = 4

func overloadWorkload(eng *sim.Engine) (*core.DB, core.Workload) {
	db := core.NewDB(eng)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 4096
	cfg.ReqPerTxn = 4
	cfg.ReadPct = 0.9
	cfg.Theta = 0.2
	return db, ycsb.Build(db, cfg)
}

func noWait() core.Scheme {
	return twopl.New(twopl.NoWait, twopl.Options{})
}

// saturationTPS measures the closed-loop capacity of the overload test
// workload, the reference point for "2x saturation offered load".
func saturationTPS(t *testing.T) float64 {
	t.Helper()
	eng := sim.New(overloadCores, 42)
	db, wl := overloadWorkload(eng)
	res := core.Run(db, noWait(), wl, core.Config{
		WarmupCycles:  50_000,
		MeasureCycles: 400_000,
		AbortBackoff:  1000,
	})
	if res.Commits == 0 {
		t.Fatal("closed-loop reference run committed nothing")
	}
	return res.Throughput()
}

func openConfig(rate float64, qdepth int) core.Config {
	return core.Config{
		WarmupCycles:  50_000,
		MeasureCycles: 400_000,
		AbortBackoff:  1000,
		QueueDepth:    qdepth,
		Arrivals: core.Arrivals{
			Process: core.ArrivalPoisson,
			RateTPS: rate,
			Seed:    99,
		},
	}
}

func TestOverloadAdmissionControlBoundsQueueAndTail(t *testing.T) {
	sat := saturationTPS(t)
	offered := 2.5 * sat

	runAt := func(qdepth int) core.Result {
		eng := sim.New(overloadCores, 42)
		db, wl := overloadWorkload(eng)
		return core.Run(db, noWait(), wl, openConfig(offered, qdepth))
	}

	const bound = 16
	ac := runAt(bound)
	unbounded := runAt(0)

	if ac.Offered == 0 || unbounded.Offered == 0 {
		t.Fatal("open loop offered nothing")
	}
	// With admission control: bounded queue, nonzero shed fraction.
	if got := ac.QueueDepth.Max(); got > bound {
		t.Fatalf("queue depth exceeded its bound: max %d > %d", got, bound)
	}
	if ac.Shed == 0 {
		t.Fatalf("2.5x saturation with a bounded queue must shed: %+v", ac)
	}
	if f := ac.ShedFraction(); f <= 0 || f >= 1 {
		t.Fatalf("shed fraction out of range: %v", f)
	}
	// Without: the backlog grows without bound over the window (far past
	// the AC bound) and nothing is shed.
	if unbounded.Shed != 0 {
		t.Fatalf("unbounded queue must not shed, got %d", unbounded.Shed)
	}
	if got := unbounded.QueueDepth.Max(); got < 8*bound {
		t.Fatalf("unbounded backlog did not grow: max depth %d", got)
	}
	// Tail latency: bounded sojourn vs a backlog that only deepens. The
	// unbounded P99 includes queueing delay that grows with the window,
	// so AC must be far below it.
	if ac.Latency.P99() >= unbounded.Latency.P99()/4 {
		t.Fatalf("admission control did not bound tail latency: AC P99 %d vs unbounded %d",
			ac.Latency.P99(), unbounded.Latency.P99())
	}
	if ac.GoodputTPS() <= 0 {
		t.Fatal("no goodput under admission control")
	}
	if ac.OfferedTPS() < 1.5*sat {
		t.Fatalf("offered rate %v did not reach the configured overload (sat %v)", ac.OfferedTPS(), sat)
	}
}

// TestOverloadSampleSumsMatchResult pins the accounting identity from the
// issue: Commits, Aborts, Shed and Deadlined summed across the interval
// samples equal the final Result's counters exactly.
func TestOverloadSampleSumsMatchResult(t *testing.T) {
	sat := saturationTPS(t)
	eng := sim.New(overloadCores, 42)
	db, wl := overloadWorkload(eng)
	cfg := openConfig(2.5*sat, 16)
	cfg.SampleEvery = 40_000
	// A deadline of a few mean service times: queued transactions near
	// the back of a full queue are abandoned at dequeue, so both the
	// shed and the deadline paths fire.
	cfg.Deadline = 10_000
	cfg.RetryLimit = 4

	var sums struct{ commits, aborts, shed, deadlined, qdepth uint64 }
	res := core.RunObserved(db, noWait(), wl, cfg, core.ObserverFunc(func(s core.Sample) {
		sums.commits += s.Commits
		sums.aborts += s.Aborts
		sums.shed += s.Shed
		sums.deadlined += s.Deadlined
		sums.qdepth += s.QueueDepth.Count()
	}))

	if sums.commits != res.Commits || sums.aborts != res.Aborts {
		t.Fatalf("sample sums diverge from result: commits %d/%d aborts %d/%d",
			sums.commits, res.Commits, sums.aborts, res.Aborts)
	}
	if sums.shed != res.Shed || sums.deadlined != res.Deadlined {
		t.Fatalf("overload sample sums diverge: shed %d/%d deadlined %d/%d",
			sums.shed, res.Shed, sums.deadlined, res.Deadlined)
	}
	if sums.qdepth != res.QueueDepth.Count() {
		t.Fatalf("queue-depth observations diverge: %d vs %d", sums.qdepth, res.QueueDepth.Count())
	}
	if res.Shed == 0 || res.Deadlined == 0 {
		t.Fatalf("overload run should exercise shed and deadline paths: %+v", res)
	}
}

// TestDeadlinedCountsSeparatelyFromAborts uses a retry budget of one
// attempt: every CC abort immediately abandons its transaction, so the
// Deadlined count must equal the abort count — and commits never double
// count into either.
func TestDeadlinedCountsSeparatelyFromAborts(t *testing.T) {
	run := func(retryLimit int) core.Result {
		eng := sim.New(overloadCores, 7)
		db := core.NewDB(eng)
		cfg := ycsb.DefaultConfig()
		cfg.Rows = 256 // high contention: plenty of aborts
		cfg.ReqPerTxn = 8
		cfg.ReadPct = 0.5
		cfg.Theta = 0.8
		wl := ycsb.Build(db, cfg)
		return core.Run(db, noWait(), wl, core.Config{
			WarmupCycles:  20_000,
			MeasureCycles: 300_000,
			AbortBackoff:  1000,
			RetryLimit:    retryLimit,
		})
	}
	res := run(1)
	if res.Aborts == 0 {
		t.Fatal("contended workload produced no aborts")
	}
	if res.Deadlined != res.Aborts {
		t.Fatalf("with RetryLimit 1 every abort abandons: deadlined %d, aborts %d",
			res.Deadlined, res.Aborts)
	}
	// Unlimited retries: nothing is ever abandoned.
	if unlimited := run(0); unlimited.Deadlined != 0 {
		t.Fatalf("unlimited retries must not deadline, got %d", unlimited.Deadlined)
	}
}

// TestDeadlineAbandonsLongTransactions drives an overloaded open loop
// with a deadline shorter than the queueing delay and checks that
// transactions are abandoned as Deadlined, not silently retried or
// counted as CC aborts.
func TestDeadlineAbandonsLongTransactions(t *testing.T) {
	sat := saturationTPS(t)
	eng := sim.New(overloadCores, 42)
	db, wl := overloadWorkload(eng)
	cfg := openConfig(2.5*sat, 0) // unbounded queue: sojourn grows
	cfg.Deadline = 20_000
	res := core.Run(db, noWait(), wl, cfg)
	if res.Deadlined == 0 {
		t.Fatalf("overloaded run with a short deadline abandoned nothing: %+v", res)
	}
	// Every commit beat its deadline-gated retry loop; latency of the
	// committed population stays near the deadline (one in-flight attempt
	// may finish past it, but the tail cannot run away).
	if res.Commits == 0 {
		t.Fatal("deadline run committed nothing")
	}
}

// TestBackoffCapDeterminism pins seed-determinism of the capped
// exponential backoff: two identical configurations produce deeply equal
// results, and enabling the cap changes behavior relative to fixed
// backoff (the exponential actually engages).
func TestBackoffCapDeterminism(t *testing.T) {
	run := func(cap uint64) core.Result {
		eng := sim.New(overloadCores, 11)
		db := core.NewDB(eng)
		cfg := ycsb.DefaultConfig()
		cfg.Rows = 256
		cfg.ReqPerTxn = 8
		cfg.ReadPct = 0.5
		cfg.Theta = 0.8
		wl := ycsb.Build(db, cfg)
		return core.Run(db, noWait(), wl, core.Config{
			WarmupCycles:  20_000,
			MeasureCycles: 300_000,
			AbortBackoff:  500,
			BackoffCap:    cap,
		})
	}
	a, b := run(8000), run(8000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("capped backoff is not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if fixed := run(0); reflect.DeepEqual(a, fixed) {
		t.Fatal("backoff cap had no effect on a contended run")
	}
}

// TestPrioritySheddingByType sheds TPC-C Payment transactions once the
// queue passes its high-water mark and checks NewOrder is preserved:
// under the per-type results, Payment loses a larger share of its
// completions than NewOrder.
func TestPrioritySheddingByType(t *testing.T) {
	// Measure TPC-C's closed-loop capacity first so the offered load is
	// reliably past saturation.
	satRun := func() core.Result {
		eng := sim.New(overloadCores, 21)
		db := core.NewDB(eng)
		wl := tpcc.Build(db, tpcc.DefaultConfig(overloadCores))
		return core.Run(db, noWait(), wl, core.Config{
			WarmupCycles:  50_000,
			MeasureCycles: 400_000,
			AbortBackoff:  1000,
		})
	}()
	if satRun.Commits == 0 {
		t.Fatal("closed-loop TPC-C committed nothing")
	}
	run := func(shed string) core.Result {
		eng := sim.New(overloadCores, 21)
		db := core.NewDB(eng)
		wl := tpcc.Build(db, tpcc.DefaultConfig(overloadCores))
		cfg := core.Config{
			WarmupCycles:  50_000,
			MeasureCycles: 400_000,
			AbortBackoff:  1000,
			QueueDepth:    16,
			ShedTypes:     shed,
			Arrivals: core.Arrivals{
				Process: core.ArrivalPoisson,
				RateTPS: 3 * satRun.Throughput(),
				Seed:    5,
			},
		}
		return core.Run(db, noWait(), wl, cfg)
	}
	plain := run("")
	prio := run("Payment")
	if prio.Shed == 0 || plain.Shed == 0 {
		t.Fatal("overdriven TPC-C must shed")
	}
	frac := func(r core.Result, i int) float64 {
		total := r.PerTxn[0].Commits + r.PerTxn[1].Commits
		if total == 0 {
			return 0
		}
		return float64(r.PerTxn[i].Commits) / float64(total)
	}
	// Payment is index 0. With priority shedding its share of completed
	// work must drop relative to the unprioritized run.
	if frac(prio, 0) >= frac(plain, 0) {
		t.Fatalf("priority shedding did not deprioritize Payment: share %.3f vs %.3f",
			frac(prio, 0), frac(plain, 0))
	}
	if prio.PerTxn[1].Commits == 0 {
		t.Fatal("NewOrder starved despite being protected")
	}
}

// TestFaultInjectionStallsWorker pins the injector contract end to end: a
// stalled worker bills Idle cycles and completes less work than the
// fault-free run, and two faulted runs are identical (determinism).
func TestFaultInjectionStallsWorker(t *testing.T) {
	run := func(f core.FaultInjector) core.Result {
		eng := sim.New(overloadCores, 42)
		db, wl := overloadWorkload(eng)
		cfg := core.Config{
			WarmupCycles:  50_000,
			MeasureCycles: 400_000,
			AbortBackoff:  1000,
			Fault:         f,
		}
		return core.Run(db, noWait(), wl, cfg)
	}
	clean := run(nil)
	fault := faultinject.StalledWorker{Worker: 1, From: 100_000, Until: 350_000}
	stalled := run(fault)
	if stalled.Commits >= clean.Commits {
		t.Fatalf("stalling a worker for most of the window should cost commits: %d vs %d",
			stalled.Commits, clean.Commits)
	}
	if got := stalled.Breakdown.Get(stats.Idle); got == 0 {
		t.Fatal("injected stall billed no Idle cycles")
	}
	if again := run(fault); !reflect.DeepEqual(stalled, again) {
		t.Fatal("fault injection broke determinism")
	}
	if clean.Breakdown.Get(stats.Idle) != 0 {
		t.Fatal("fault-free closed loop must bill no Idle cycles")
	}
}

// TestStopFlagEndsRunEarly sets Config.Stop from an observer mid-run;
// workers drain their in-flight transaction and exit, so the stopped run
// completes a fraction of the full run's work.
func TestStopFlagEndsRunEarly(t *testing.T) {
	run := func(stopAt int) core.Result {
		eng := sim.New(overloadCores, 42)
		db, wl := overloadWorkload(eng)
		var stop atomic.Bool
		cfg := core.Config{
			WarmupCycles:  50_000,
			MeasureCycles: 400_000,
			AbortBackoff:  1000,
			SampleEvery:   20_000,
			Stop:          &stop,
		}
		return core.RunObserved(db, noWait(), wl, cfg, core.ObserverFunc(func(s core.Sample) {
			if stopAt >= 0 && s.Interval >= stopAt {
				stop.Store(true)
			}
		}))
	}
	full := run(-1)
	stopped := run(2)
	if stopped.Commits == 0 {
		t.Fatal("stopped run should keep the work done so far")
	}
	if stopped.Commits >= full.Commits/2 {
		t.Fatalf("stop flag did not end the run early: %d vs full %d", stopped.Commits, full.Commits)
	}
}

// TestOpenLoopDeterminism: the whole open-loop tier (arrivals, queues,
// shedding, deadlines, sampling) is deterministic on the sim runtime.
func TestOpenLoopDeterminism(t *testing.T) {
	sat := saturationTPS(t)
	run := func() core.Result {
		eng := sim.New(overloadCores, 42)
		db, wl := overloadWorkload(eng)
		cfg := openConfig(2.0*sat, 8)
		cfg.Deadline = 100_000
		cfg.RetryLimit = 3
		cfg.BackoffCap = 16_000
		return core.Run(db, noWait(), wl, cfg)
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("open loop is not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMMPPBurstsOfferMoreThanCalm: the bursty generator's offered load
// sits between the calm and burst rates, and is deterministic.
func TestMMPPBurstsOfferMoreThanCalm(t *testing.T) {
	sat := saturationTPS(t)
	run := func(p core.ArrivalProcess) core.Result {
		eng := sim.New(overloadCores, 42)
		db, wl := overloadWorkload(eng)
		cfg := openConfig(0.5*sat, 0)
		cfg.Arrivals.Process = p
		if p == core.ArrivalMMPP {
			cfg.Arrivals.BurstRateTPS = 4 * sat
			cfg.Arrivals.BurstCycles = 50_000
			cfg.Arrivals.CalmCycles = 100_000
		}
		return core.Run(db, noWait(), wl, cfg)
	}
	calm := run(core.ArrivalPoisson)
	bursty := run(core.ArrivalMMPP)
	if bursty.Offered <= calm.Offered {
		t.Fatalf("MMPP bursts should raise offered load: %d vs %d", bursty.Offered, calm.Offered)
	}
}

func TestOverloadConfigValidation(t *testing.T) {
	base := core.Config{MeasureCycles: 1000}
	bad := []core.Config{
		func() core.Config { c := base; c.QueueDepth = 4; return c }(),     // queue without open loop
		func() core.Config { c := base; c.ShedTypes = "ycsb"; return c }(), // shed without open loop
		func() core.Config { c := base; c.QueueDepth = -1; return c }(),
		func() core.Config { c := base; c.RetryLimit = -1; return c }(),
		func() core.Config { c := base; c.Arrivals.RateTPS = 100; return c }(), // rate without process
		func() core.Config {
			c := base
			c.Arrivals = core.Arrivals{Process: core.ArrivalPoisson}
			return c
		}(), // process without rate
		func() core.Config {
			c := base
			c.Arrivals = core.Arrivals{Process: core.ArrivalMMPP, RateTPS: 100, BurstRateTPS: 200}
			return c
		}(), // MMPP without dwell times
		func() core.Config {
			c := base
			c.Arrivals = core.Arrivals{Process: core.ArrivalProcess(9), RateTPS: 1}
			return c
		}(), // unknown process
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should have been rejected: %+v", i, c)
		}
	}
	good := base
	good.Arrivals = core.Arrivals{Process: core.ArrivalPoisson, RateTPS: 1000}
	good.QueueDepth = 8
	good.ShedTypes = "ycsb"
	good.Deadline = 500
	good.RetryLimit = 2
	good.BackoffCap = 4000
	if err := good.Validate(); err != nil {
		t.Errorf("valid overload config rejected: %v", err)
	}
}
