// Package core implements the lightweight main-memory DBMS of §3.2: a
// row-store with hash indexes, a pluggable concurrency-control interface,
// one worker thread per core pulling transactions from a per-worker queue,
// and time-breakdown accounting over the six components the paper reports.
//
// The engine deliberately contains only what the experiments need — the
// paper's own justification: "we can ensure that no other bottlenecks
// exist other than concurrency control."
package core

import (
	"errors"

	"abyss1000/internal/index"
	"abyss1000/internal/mem"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
	"abyss1000/internal/wal"
)

// ErrAbort is returned by scheme operations when the transaction must be
// aborted due to a concurrency-control conflict. The engine rolls the
// transaction back and restarts it (after a randomized backoff).
var ErrAbort = errors.New("core: transaction aborted by concurrency control")

// ErrUserAbort is returned by transaction logic to request a rollback (the
// paper: TPC-C transactions "can also abort because of certain conditions
// in their program logic"). Per the TPC-C specification such rollbacks are
// completed work: the engine rolls back but does not restart.
var ErrUserAbort = errors.New("core: transaction aborted by program logic")

// DB is a database instance bound to a runtime: catalog, indexes and
// configuration shared by all workers.
type DB struct {
	RT      rt.Runtime
	Catalog *storage.Catalog
	indexes map[string]*index.Hash

	// indexOrder holds the indexes in registration order; the position is
	// the ordinal WAL records use, so recovery maps ordinals back to
	// indexes as long as setup registers them in the same order (it does:
	// workload setup is deterministic).
	indexOrder []*index.Hash
	indexOrd   map[*index.Hash]int

	// Ordered secondary indexes keep their own ordinal space, mirroring
	// the hash registry (commit records carry both ordinals).
	ordIndexes map[string]*index.Ordered
	ordOrder   []*index.Ordered
	ordOrd     map[*index.Ordered]int

	// NParts is the number of H-STORE partitions (always the worker
	// count, as in the paper's experiments).
	NParts int

	// GlobalAlloc, when non-nil, replaces the per-worker arenas with the
	// centralized allocator (the §4.1 malloc ablation).
	GlobalAlloc *mem.GlobalPool

	// Wal, when non-nil, is the attached write-ahead log: every commit
	// appends its after-images and recovery replays them. Nil means
	// durability is off and the commit path is exactly the pre-durability
	// one (the nil check is the only overhead).
	Wal *wal.Writer

	// walEpoch counts measurement runs on this DB; an epoch record opens
	// each run's log span so replay resets its version floors when a new
	// run restarts timestamp allocation.
	walEpoch uint64

	// Cap, when non-nil, records committed read/write versions for the
	// serializability checker (set per run by Config.Capture). Like the
	// WAL it is accounting-only: nil checks are the only overhead when
	// off, and the schedule is unchanged when on.
	Cap *Capture
}

// NewDB creates an empty database on r.
func NewDB(r rt.Runtime) *DB {
	return &DB{
		RT:         r,
		Catalog:    storage.NewCatalog(),
		indexes:    make(map[string]*index.Hash),
		indexOrd:   make(map[*index.Hash]int),
		ordIndexes: make(map[string]*index.Ordered),
		ordOrd:     make(map[*index.Ordered]int),
		NParts:     r.NumProcs(),
	}
}

// AddIndex builds and registers a hash index named name over t.
func (db *DB) AddIndex(name string, t *storage.Table, minBuckets int) *index.Hash {
	h := index.New(db.RT, t, minBuckets)
	db.indexes[name] = h
	db.indexOrd[h] = len(db.indexOrder)
	db.indexOrder = append(db.indexOrder, h)
	return h
}

// Indexes returns the registered indexes in ordinal (registration) order.
func (db *DB) Indexes() []*index.Hash { return db.indexOrder }

// Index returns the named index, or panics (missing indexes are
// programming errors in workload definitions).
func (db *DB) Index(name string) *index.Hash {
	h, ok := db.indexes[name]
	if !ok {
		panic("core: no index " + name)
	}
	return h
}

// AddOrderedIndex builds and registers an ordered secondary index named
// name over t. Like hash indexes, registration order is the ordinal WAL
// records and checkpoints use, so deterministic setup must register
// ordered indexes in a fixed order.
func (db *DB) AddOrderedIndex(name string, t *storage.Table) *index.Ordered {
	o := index.NewOrdered(db.RT, t)
	db.ordIndexes[name] = o
	db.ordOrd[o] = len(db.ordOrder)
	db.ordOrder = append(db.ordOrder, o)
	return o
}

// OrderedIndexes returns the registered ordered indexes in ordinal order.
func (db *DB) OrderedIndexes() []*index.Ordered { return db.ordOrder }

// OrderedIndex returns the named ordered index, or panics.
func (db *DB) OrderedIndex(name string) *index.Ordered {
	o, ok := db.ordIndexes[name]
	if !ok {
		panic("core: no ordered index " + name)
	}
	return o
}

// Txn is one transaction: program logic intermixed with query invocations
// (§3.2), executed serially by its worker.
type Txn interface {
	// Run executes the transaction body against tx. It returns nil to
	// commit, ErrUserAbort to roll back, or propagates ErrAbort from the
	// scheme.
	Run(tx *TxnCtx) error

	// Partitions returns the sorted set of partitions the transaction
	// will access, which H-STORE requires to be known up front (§2.2).
	// Schemes other than H-STORE ignore it; implementations may return
	// nil for them.
	Partitions() []int
}

// Workload generates each worker's transaction stream. Implementations
// keep per-worker state indexed by Proc ID so that Next is cheap and
// deterministic per worker.
type Workload interface {
	// Next returns the next transaction for worker p. The returned Txn
	// is owned by the worker until it commits (implementations may reuse
	// one object per worker).
	Next(p rt.Proc) Txn
}

// CommitHook is an optional interface for Txn: when implemented, the
// engine invokes Committed exactly once after the transaction commits
// (not after a program-logic rollback). The verification workloads in
// internal/history use it to log precisely the committed histories.
type CommitHook interface {
	Committed()
}
