package native_test

import (
	"sync"
	"testing"

	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

func TestRunExecutesAllWorkers(t *testing.T) {
	r := native.New(8, 1)
	var mu sync.Mutex
	ran := map[int]bool{}
	r.Run(func(p rt.Proc) {
		mu.Lock()
		ran[p.ID()] = true
		mu.Unlock()
	})
	if len(ran) != 8 {
		t.Fatalf("only %d/8 workers ran", len(ran))
	}
}

func TestNowAdvances(t *testing.T) {
	r := native.New(1, 1)
	r.Run(func(p rt.Proc) {
		a := p.Now()
		for i := 0; i < 1000; i++ {
			_ = i
		}
		b := p.Now()
		if b < a {
			t.Error("wall clock went backwards")
		}
	})
}

func TestLatchMutualExclusion(t *testing.T) {
	r := native.New(8, 1)
	l := r.NewLatch(1)
	counter := 0
	r.Run(func(p rt.Proc) {
		for i := 0; i < 1000; i++ {
			l.Acquire(p, stats.Manager)
			counter++
			l.Release(p, stats.Manager)
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (latch not mutually exclusive)", counter)
	}
}

func TestCounterAtomic(t *testing.T) {
	r := native.New(8, 1)
	c := r.NewCounter(1)
	seen := make([]map[uint64]bool, 8)
	r.Run(func(p rt.Proc) {
		m := map[uint64]bool{}
		for i := 0; i < 1000; i++ {
			m[c.Add(p, stats.TsAlloc, 1)] = true
		}
		seen[p.ID()] = m
	})
	all := map[uint64]bool{}
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("duplicate counter value %d", v)
			}
			all[v] = true
		}
	}
	if c.Load(r.Proc(0), stats.TsAlloc) != 8000 {
		t.Fatal("final value wrong")
	}
	c.Store(r.Proc(0), stats.TsAlloc, 5)
	if c.Load(r.Proc(0), stats.TsAlloc) != 5 {
		t.Fatal("store failed")
	}
}

func TestParkUnpark(t *testing.T) {
	r := native.New(2, 1)
	r.Run(func(p rt.Proc) {
		if p.ID() == 0 {
			p.Park(stats.Wait)
			return
		}
		r.Unpark(p, r.Proc(0))
	})
}

func TestUnparkBeforeParkIsPermit(t *testing.T) {
	r := native.New(1, 1)
	r.Run(func(p rt.Proc) {
		r.Unpark(nil, p)
		p.Park(stats.Wait) // must not block: permit pending
	})
}

func TestParkTimeout(t *testing.T) {
	r := native.New(1, 1)
	r.Run(func(p rt.Proc) {
		if p.ParkTimeout(stats.Wait, 1_000_000) { // 1 ms
			t.Error("ParkTimeout reported wake with no waker")
		}
	})
}

func TestDoubleUnparkSinglePermit(t *testing.T) {
	r := native.New(1, 1)
	r.Run(func(p rt.Proc) {
		r.Unpark(nil, p)
		r.Unpark(nil, p) // permits are binary
		p.Park(stats.Wait)
		if p.ParkTimeout(stats.Wait, 100_000) {
			t.Error("second park consumed a phantom permit")
		}
	})
}

func TestTickBillsModeledCycles(t *testing.T) {
	r := native.New(1, 1)
	r.Run(func(p rt.Proc) {
		p.Tick(stats.Useful, 123)
		p.Sync(stats.Index, 7)
		p.MemRead(stats.Useful, 1, 64)
		p.MemWrite(stats.Useful, 1, 64)
	})
	bd := r.Proc(0).Stats()
	if bd.Get(stats.Useful) < 123 || bd.Get(stats.Index) != 7 {
		t.Fatalf("billing wrong: %d/%d", bd.Get(stats.Useful), bd.Get(stats.Index))
	}
}

func TestDeterministicRandPerWorker(t *testing.T) {
	draw := func() [4]int64 {
		r := native.New(4, 99)
		var out [4]int64
		r.Run(func(p rt.Proc) {
			out[p.ID()] = p.Rand().Int63()
		})
		return out
	}
	a, b := draw(), draw()
	if a != b {
		t.Fatalf("per-worker RNG not reproducible: %v vs %v", a, b)
	}
	if a[0] == a[1] {
		t.Fatal("different workers share an RNG stream")
	}
}
