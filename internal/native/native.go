// Package native implements rt.Runtime on real goroutines with real
// synchronization primitives. It exists for the paper's Fig. 3 experiment,
// which validates that the simulator and real hardware exhibit the same
// performance trends: the same DBMS and concurrency-control code runs
// unmodified on both substrates.
//
// Under the native runtime, Tick/Sync/MemRead/MemWrite only account modeled
// cycles into the stats breakdown (they do not delay execution); Now()
// returns real elapsed nanoseconds, so with the nominal 1 GHz target clock
// one "cycle" is one nanosecond and throughput figures are real wall-clock
// transactions per second. Parking uses per-proc permit channels; latches
// are sync.Mutex; counters are atomic fetch-adds.
package native

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Runtime is the real-concurrency rt.Runtime.
type Runtime struct {
	n     int
	seed  int64
	start time.Time
	procs []*Proc
}

// New creates a native runtime with n worker goroutines. n should not
// exceed the host's core count for meaningful scaling measurements, but any
// positive value is accepted.
func New(n int, seed int64) *Runtime {
	r := &Runtime{n: n, seed: seed, start: time.Now()}
	r.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		r.procs[i] = &Proc{
			id:     i,
			rt:     r,
			rng:    rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9)),
			permit: make(chan struct{}, 1),
		}
	}
	return r
}

// NumProcs implements rt.Runtime.
func (r *Runtime) NumProcs() int { return r.n }

// Frequency implements rt.Runtime: 1 "cycle" = 1 ns of wall time.
func (r *Runtime) Frequency() float64 { return 1e9 }

// Proc returns worker i (useful in tests).
func (r *Runtime) Proc(i int) *Proc { return r.procs[i] }

// Run implements rt.Runtime.
func (r *Runtime) Run(body func(p rt.Proc)) {
	r.start = time.Now()
	var wg sync.WaitGroup
	wg.Add(r.n)
	for _, p := range r.procs {
		p := p
		go func() {
			defer wg.Done()
			body(p)
		}()
	}
	wg.Wait()
}

// Unpark implements rt.Runtime with binary-permit semantics.
func (r *Runtime) Unpark(waker rt.Proc, target rt.Proc) {
	t := target.(*Proc)
	select {
	case t.permit <- struct{}{}:
	default: // permit already pending
	}
}

// NewLatch implements rt.Runtime.
func (r *Runtime) NewLatch(key uint64) rt.Latch { return &latch{} }

// NewCounter implements rt.Runtime.
func (r *Runtime) NewCounter(key uint64) rt.Counter { return &counter{} }

// NewHardwareCounter implements rt.Runtime. Real CPUs have no center-of-chip
// fetch-add unit (the paper's point); the closest native equivalent is the
// same atomic counter.
func (r *Runtime) NewHardwareCounter(key uint64) rt.Counter { return &counter{} }

// Proc is one native worker. It implements rt.Proc.
type Proc struct {
	id     int
	rt     *Runtime
	rng    *rand.Rand
	bd     stats.Breakdown
	permit chan struct{}

	// pend batches cycles billed by Tick/Sync/Mem*/Park, mirroring the
	// simulator's accounting fast path: the hot path increments one flat
	// array and Stats() flushes into the Breakdown (and its per-attempt
	// bookkeeping) on demand. Only the owning worker touches it.
	pend [stats.NumComponents]uint64
}

var _ rt.Proc = (*Proc)(nil)

// ID implements rt.Proc.
func (p *Proc) ID() int { return p.id }

// Now implements rt.Proc: elapsed wall-clock nanoseconds since Run started.
func (p *Proc) Now() uint64 { return uint64(time.Since(p.rt.start)) }

// Rand implements rt.Proc.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Stats implements rt.Proc. It flushes the batched cycle accounting first,
// so callers always observe (and mutate attempt state against) an
// up-to-date Breakdown.
func (p *Proc) Stats() *stats.Breakdown {
	p.bd.AddPending(&p.pend)
	return &p.bd
}

// Tick implements rt.Proc: account modeled cycles only.
func (p *Proc) Tick(c stats.Component, cycles uint64) { p.pend[c] += cycles }

// Sync implements rt.Proc: on real hardware ordering comes from the real
// primitives, so Sync is just accounting.
func (p *Proc) Sync(c stats.Component, cycles uint64) { p.pend[c] += cycles }

// MemRead implements rt.Proc.
func (p *Proc) MemRead(c stats.Component, key uint64, bytes uint64) {
	p.pend[c] += 8 + bytes/16
}

// MemWrite implements rt.Proc.
func (p *Proc) MemWrite(c stats.Component, key uint64, bytes uint64) {
	p.pend[c] += 8 + bytes/8
}

// Park implements rt.Proc.
func (p *Proc) Park(c stats.Component) {
	t0 := time.Now()
	<-p.permit
	p.pend[c] += uint64(time.Since(t0))
}

// ParkTimeout implements rt.Proc.
func (p *Proc) ParkTimeout(c stats.Component, cycles uint64) bool {
	t0 := time.Now()
	timer := time.NewTimer(time.Duration(cycles) * time.Nanosecond)
	defer timer.Stop()
	select {
	case <-p.permit:
		p.pend[c] += uint64(time.Since(t0))
		return true
	case <-timer.C:
		p.pend[c] += uint64(time.Since(t0))
		return false
	}
}

type latch struct{ mu sync.Mutex }

// Acquire implements rt.Latch.
func (l *latch) Acquire(p rt.Proc, c stats.Component) { l.mu.Lock() }

// Release implements rt.Latch.
func (l *latch) Release(p rt.Proc, c stats.Component) { l.mu.Unlock() }

type counter struct{ v atomic.Uint64 }

// Add implements rt.Counter.
func (c *counter) Add(p rt.Proc, comp stats.Component, delta uint64) uint64 {
	return c.v.Add(delta)
}

// Load implements rt.Counter.
func (c *counter) Load(p rt.Proc, comp stats.Component) uint64 {
	return c.v.Load()
}

// Store implements rt.Counter.
func (c *counter) Store(p rt.Proc, comp stats.Component, v uint64) {
	c.v.Store(v)
}

var _ rt.Runtime = (*Runtime)(nil)
