module abyss1000

go 1.24
