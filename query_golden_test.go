package abyss1000_test

// The query operator layer and the TATP extension workload are opt-in:
// linking them into a binary may not change what the paper experiments
// measure. The imports below force both packages (and the ordered-index
// machinery they pull in) into this test binary; the simulator's golden
// signature across eleven runs must stay byte-identical to the pinned
// transcript captured before either existed.

import (
	"os"
	"testing"

	"abyss1000/bench"

	_ "abyss1000/query"
	_ "abyss1000/workloads/tatp"
)

func TestGoldenSignatureWithQueryLayer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~11 full simulations")
	}
	want, err := os.ReadFile("testdata/golden_sim.txt")
	if err != nil {
		t.Fatalf("missing pinned signature: %v", err)
	}
	got := bench.GoldenSignature()
	if got != string(want) {
		t.Errorf("query layer or TATP registration perturbed the simulated schedule:\n%s",
			diffLines(string(want), got))
	}
}
