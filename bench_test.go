package abyss1000_test

import (
	"testing"

	"abyss1000/bench"
)

// benchParams shrinks the experiments so `go test -bench=.` finishes in a
// few minutes; cmd/abyss-bench runs the same experiments at quick or full
// (1024-core) scale. Every benchmark reports the headline metric of its
// figure via b.ReportMetric.
func benchParams() bench.Params {
	return bench.Params{
		MaxCores:        16,
		WarmupCycles:    100_000,
		MeasureCycles:   400_000,
		Rows:            8_192,
		FieldSize:       100,
		NativeWarmupNS:  2_000_000,
		NativeMeasureNS: 10_000_000,
		Seed:            42,
	}
}

// reportFigure re-runs the figure b.N times (serially — parallel-runner
// equivalence is pinned by the bench package's own tests) and reports the
// last series' top-core throughput.
func reportFigure(b *testing.B, run bench.FigureFunc) {
	b.Helper()
	p := benchParams()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Build(run, p, nil)
	}
	if fig == nil || len(fig.Series) == 0 {
		b.Fatal("figure produced no series")
	}
	s := fig.Series[0]
	if len(s.Points) == 0 {
		b.Fatal("series has no points")
	}
	last := s.Points[len(s.Points)-1]
	b.ReportMetric(last.Y, "Mtxn/s@top")
}

// BenchmarkFig03 regenerates Fig. 3: simulator vs real hardware trends.
func BenchmarkFig03(b *testing.B) { reportFigure(b, bench.Fig3) }

// BenchmarkFig04 regenerates Fig. 4: lock thrashing.
func BenchmarkFig04(b *testing.B) { reportFigure(b, bench.Fig4) }

// BenchmarkFig05 regenerates Fig. 5: waiting vs aborting.
func BenchmarkFig05(b *testing.B) { reportFigure(b, bench.Fig5) }

// BenchmarkFig06 regenerates Fig. 6: timestamp allocation methods.
func BenchmarkFig06(b *testing.B) { reportFigure(b, bench.Fig6) }

// BenchmarkFig07 regenerates Fig. 7: timestamp allocation in the DBMS.
func BenchmarkFig07(b *testing.B) { reportFigure(b, bench.Fig7) }

// BenchmarkFig08 regenerates Fig. 8: read-only YCSB.
func BenchmarkFig08(b *testing.B) { reportFigure(b, bench.Fig8) }

// BenchmarkFig09 regenerates Fig. 9: write-intensive YCSB, theta=0.6.
func BenchmarkFig09(b *testing.B) { reportFigure(b, bench.Fig9) }

// BenchmarkFig10 regenerates Fig. 10: write-intensive YCSB, theta=0.8.
func BenchmarkFig10(b *testing.B) { reportFigure(b, bench.Fig10) }

// BenchmarkFig11 regenerates Fig. 11: the contention sweep.
func BenchmarkFig11(b *testing.B) { reportFigure(b, bench.Fig11) }

// BenchmarkFig12 regenerates Fig. 12: working set size.
func BenchmarkFig12(b *testing.B) { reportFigure(b, bench.Fig12) }

// BenchmarkFig13 regenerates Fig. 13: read/write mixture.
func BenchmarkFig13(b *testing.B) { reportFigure(b, bench.Fig13) }

// BenchmarkFig14 regenerates Fig. 14: database partitioning.
func BenchmarkFig14(b *testing.B) { reportFigure(b, bench.Fig14) }

// BenchmarkFig15 regenerates Fig. 15: multi-partition transactions.
func BenchmarkFig15(b *testing.B) { reportFigure(b, bench.Fig15) }

// BenchmarkFig16 regenerates Fig. 16: TPC-C with 4 warehouses.
func BenchmarkFig16(b *testing.B) { reportFigure(b, bench.Fig16) }

// BenchmarkFig17 regenerates Fig. 17: TPC-C with warehouses >= workers.
func BenchmarkFig17(b *testing.B) { reportFigure(b, bench.Fig17) }

// BenchmarkAblationMalloc regenerates the §4.1 allocator ablation.
func BenchmarkAblationMalloc(b *testing.B) { reportFigure(b, bench.AblationMalloc) }

// BenchmarkAblationValidation regenerates the §4.3 OCC validation
// ablation (parallel per-tuple vs global critical section).
func BenchmarkAblationValidation(b *testing.B) { reportFigure(b, bench.AblationValidation) }
